package vm_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/value"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// TestCompileUsesLiveArguments is the contract object inspection depends
// on: the JIT compiles a method at its threshold invocation *with that
// invocation's argument values*, and the compiled artifact reflects the
// heap those arguments point into.
func TestCompileUsesLiveArguments(t *testing.T) {
	w, _ := workloads.ByName("db")
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra})
	if _, err := v.Measure(nil, 1); err != nil {
		t.Fatal(err)
	}
	c := v.CompiledFor(prog.MethodByName("::sortPass"))
	if c == nil {
		t.Fatal("sortPass not compiled")
	}
	if len(c.Graphs) == 0 {
		t.Fatal("no load dependence graphs — inspection saw no live data")
	}
	found := false
	for _, g := range c.Graphs {
		for _, n := range g.Nodes {
			for _, e := range n.Succs {
				if e.HasIntra && e.Intra == 136 {
					found = true // Record -> Vector co-allocation distance
				}
			}
		}
	}
	if !found {
		t.Error("the record-cluster intra stride (+136) was not discovered from live arguments")
	}
}

// TestCompiledCodeIsCached: the second invocation after compilation must
// reuse the artifact (pointer identity).
func TestCompiledCodeIsCached(t *testing.T) {
	p := counterProgram(5, 10)
	v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	if _, err := v.Run(nil); err != nil {
		t.Fatal(err)
	}
	work := p.MethodByName("::work")
	c1 := v.CompiledFor(work)
	if _, err := v.Run(nil); err != nil {
		t.Fatal(err)
	}
	if v.CompiledFor(work) != c1 {
		t.Error("method recompiled")
	}
}

// TestGCModeConfig: the VM passes the collector choice through.
func TestGCModeConfig(t *testing.T) {
	p := counterProgram(1, 1)
	v := vm.New(p, vm.Config{GC: heap.GCMarkSweepFreeList})
	if v.Heap == nil {
		t.Fatal("no heap")
	}
	// Indirect check: a collection with no roots on a freelist heap must
	// not move anything.
	a, _ := v.Heap.AllocArray(value.Int(0).K, 4)
	_ = a
	v.Heap.Collect(func(func(*value.Value)) {})
	if v.Heap.Stats().Moved != 0 {
		t.Error("freelist mode must not move objects")
	}
}

// TestJITLedgerAccumulates: compiling more methods grows the ledger
// monotonically, and the prefetch share is a subset.
func TestJITLedgerAccumulates(t *testing.T) {
	w, _ := workloads.ByName("euler")
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra})
	s1, err := v.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	v.ResetRun()
	s2, err := v.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.JITUnits < s1.JITUnits {
		t.Error("the JIT ledger must be cumulative")
	}
	if s2.PrefetchUnits > s2.JITUnits {
		t.Error("prefetch units cannot exceed total JIT units")
	}
	if s2.InspectSteps == 0 {
		t.Error("euler compilation must have inspected loops")
	}
}

// TestModeChangesCodeNotResults compares compiled code size across modes.
func TestModeChangesCodeNotResults(t *testing.T) {
	w, _ := workloads.ByName("euler")
	sizes := map[jit.Mode]int{}
	var chk uint64
	for _, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
		prog := w.Build(workloads.SizeSmall)
		v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: mode})
		s, err := v.Measure(nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if chk == 0 {
			chk = s.Checksum
		} else if chk != s.Checksum {
			t.Error("mode changed results")
		}
		c := v.CompiledFor(prog.MethodByName("::sweep"))
		if c == nil {
			t.Fatal("sweep not compiled")
		}
		sizes[mode] = len(c.Code)
	}
	if sizes[jit.InterIntra] <= sizes[jit.Baseline] {
		t.Error("INTER+INTRA must insert instructions into sweep")
	}
}

var _ = ir.OpNop // keep the import if helpers change
