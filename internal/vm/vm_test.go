package vm_test

import (
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/core/jit"
	"strider/internal/ir"
	"strider/internal/value"
	"strider/internal/vm"
)

// counterProgram: main() calls work(k) `calls` times; work loops k times.
func counterProgram(calls, k int32) *ir.Program {
	u := classfile.NewUniverse()
	p := ir.NewProgram(u)

	wb := ir.NewBuilder(p, nil, "work", value.KindInt, value.KindInt)
	n := wb.Param(0)
	i := wb.ConstInt(0)
	cond := wb.NewLabel()
	body := wb.NewLabel()
	wb.Goto(cond)
	wb.Bind(body)
	wb.IncInt(i, 1)
	wb.Bind(cond)
	wb.Br(value.KindInt, ir.CondLT, i, n, body)
	wb.Return(i)
	work := wb.Finish()

	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	kk := b.ConstInt(k)
	total := b.ConstInt(0)
	c := b.ConstInt(0)
	nn := b.ConstInt(calls)
	cond2 := b.NewLabel()
	body2 := b.NewLabel()
	b.Goto(cond2)
	b.Bind(body2)
	r := b.Call(work, kk)
	b.ArithTo(total, ir.OpAdd, value.KindInt, total, r)
	b.IncInt(c, 1)
	b.Bind(cond2)
	b.Br(value.KindInt, ir.CondLT, c, nn, body2)
	b.Sink(total)
	b.Return(total)
	p.Entry = b.Finish()
	return p
}

func TestMixedModeCompilesAtThreshold(t *testing.T) {
	p := counterProgram(5, 10)
	v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline, CompileThreshold: 2})
	stats, err := v.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Result.Int() != 50 {
		t.Errorf("result = %v", stats.Result)
	}
	// work invoked 5 times with threshold 2: compiled from the 2nd call.
	work := p.MethodByName("::work")
	if v.CompiledFor(work) == nil {
		t.Error("work must be compiled")
	}
	// main invoked once: still interpreted.
	if v.CompiledFor(p.Entry) != nil {
		t.Error("main must not be compiled after one invocation")
	}
	if stats.CompiledMethods != 1 {
		t.Errorf("compiled methods = %d", stats.CompiledMethods)
	}
	if stats.CompiledCycles == 0 || stats.CompiledCycles >= stats.Cycles {
		t.Errorf("mixed-mode cycle split wrong: %d of %d", stats.CompiledCycles, stats.Cycles)
	}
}

func TestMeasureWarmupMakesSteadyState(t *testing.T) {
	p := counterProgram(3, 10)
	v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	stats, err := v.Measure(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After a warmup run, main too is compiled.
	if v.CompiledFor(p.Entry) == nil {
		t.Error("after warmup, main must be compiled")
	}
	if stats.CompiledFraction() < 0.9 {
		t.Errorf("steady state compiled fraction = %.2f", stats.CompiledFraction())
	}
}

func TestResetRunKeepsJITState(t *testing.T) {
	p := counterProgram(3, 10)
	v := vm.New(p, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	s1, err := v.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	v.ResetRun()
	s2, err := v.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Checksum != s2.Checksum {
		t.Error("re-run changed semantics")
	}
	if s2.Cycles >= s1.Cycles {
		t.Error("second run (compiled) must be faster than first (interpreted)")
	}
}

func TestRunStatsAccessors(t *testing.T) {
	var r vm.RunStats
	if r.L1LoadMPI() != 0 || r.CompiledFraction() != 0 {
		t.Error("zero-value stats must not divide by zero")
	}
	r.Instructions = 1000
	r.Mem.L1LoadMisses = 50
	r.Mem.L2LoadMisses = 10
	r.Mem.DTLBLoadMisses = 5
	if r.L1LoadMPI() != 0.05 || r.L2LoadMPI() != 0.01 || r.DTLBLoadMPI() != 0.005 {
		t.Error("MPI math wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	p := counterProgram(1, 1)
	v := vm.New(p, vm.Config{})
	if v.Config.Machine == nil || v.Config.HeapBytes == 0 || v.Config.CompileThreshold == 0 {
		t.Error("defaults not applied")
	}
}
