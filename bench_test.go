// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. 4), plus the ablation benches DESIGN.md calls out and
// microbenchmarks of the core components.
//
// The experiment benches execute their workloads once (results are cached
// within the process and shared across benches) and report the figures'
// headline numbers as custom metrics; run with -v to see the full
// regenerated tables. Under -short the small problem size is used.
//
//	go test -bench=. -benchmem                 # full evaluation
//	go test -bench=Fig6 -short -v              # quick Figure 6 + table
package strider_test

import (
	"fmt"
	"testing"

	"strider/internal/arch"
	"strider/internal/classfile"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/oracle"
	"strider/internal/value"
	"strider/internal/vm"
	"strider/internal/workloads"
)

func benchSize() workloads.Size {
	if testing.Short() {
		return workloads.SizeSmall
	}
	return workloads.SizeFull
}

// spin keeps the benchmark loop non-empty without re-running experiments.
func spin(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}

func BenchmarkTable1LoadGraph(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.Table1()
		if err != nil {
			b.Fatal(err)
		}
		out = s
	}
	b.Log("\n" + out)
}

func BenchmarkTable2MachineParams(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.Table2()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3CompiledFraction(b *testing.B) {
	rows, err := harness.Table3(benchSize())
	if err != nil {
		b.Fatal(err)
	}
	spin(b)
	b.Log("\n" + harness.FormatTable3(rows))
	for _, r := range rows {
		b.ReportMetric(r.CompiledPct, r.Workload+"_compiled_%")
	}
}

func benchSpeedupFigure(b *testing.B, fig func(workloads.Size) ([]harness.SpeedupRow, error), title string) {
	rows, err := fig(benchSize())
	if err != nil {
		b.Fatal(err)
	}
	spin(b)
	b.Log("\n" + harness.FormatSpeedups(title, rows))
	for _, r := range rows {
		b.ReportMetric(r.InterIntra, r.Workload+"_interintra_%")
	}
}

func BenchmarkFig6SpeedupsPentium4(b *testing.B) {
	benchSpeedupFigure(b, harness.Figure6, "Figure 6: speedup ratios on the Pentium 4")
}

func BenchmarkFig7SpeedupsAthlonMP(b *testing.B) {
	benchSpeedupFigure(b, harness.Figure7, "Figure 7: speedup ratios on the Athlon MP")
}

func benchMPIFigure(b *testing.B, fig func(workloads.Size) ([]harness.MPIRow, error), title string) {
	rows, err := fig(benchSize())
	if err != nil {
		b.Fatal(err)
	}
	spin(b)
	b.Log("\n" + harness.FormatMPI(title, rows))
	for _, r := range rows {
		if r.Baseline > 0 {
			b.ReportMetric(100*(r.Opt-r.Baseline)/r.Baseline, r.Workload+"_mpi_delta_%")
		}
	}
}

func BenchmarkFig8L1MPI(b *testing.B) {
	benchMPIFigure(b, harness.Figure8, "Figure 8: L1 cache load MPIs")
}

func BenchmarkFig9L2MPI(b *testing.B) {
	benchMPIFigure(b, harness.Figure9, "Figure 9: L2 cache load MPIs")
}

func BenchmarkFig10DTLBMPI(b *testing.B) {
	benchMPIFigure(b, harness.Figure10, "Figure 10: DTLB load MPIs")
}

func BenchmarkFig11CompileOverhead(b *testing.B) {
	rows, err := harness.Figure11(benchSize())
	if err != nil {
		b.Fatal(err)
	}
	spin(b)
	b.Log("\n" + harness.FormatCompile(rows))
	for _, r := range rows {
		b.ReportMetric(r.PrefetchOfJITPct, r.Workload+"_prefetch_of_jit_%")
	}
}

// --- ablations ---------------------------------------------------------------

// jitSpec builds a Spec with overridden JIT options for the db headline
// benchmark.
func dbSpecWith(mod func(*jit.Options)) (harness.Spec, harness.Spec) {
	base := harness.Spec{Workload: "db", Size: benchSizeGlobal, Machine: "Pentium4", Mode: jit.Baseline}
	opt := base
	opt.Mode = jit.InterIntra
	o := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
	if mod != nil {
		mod(&o)
	}
	opt.JIT = &o
	return base, opt
}

var benchSizeGlobal workloads.Size

// speedupOf runs the (base, opt) pair as one batch and returns the
// percentage speedup of opt over base.
func speedupOf(b *testing.B, base, opt harness.Spec) float64 {
	b.Helper()
	results, err := harness.RunAll([]harness.Spec{base, opt})
	if err != nil {
		b.Fatal(err)
	}
	return harness.SpeedupPct(results[0].Stats, results[1].Stats)
}

// sweep schedules every (base, opt) pair of an ablation as one grid so the
// worker pool (and the dedup of the repeated base cells) applies across
// the whole sweep, then returns the per-pair results in order.
func sweep(b *testing.B, pairs []harness.Spec) []harness.Result {
	b.Helper()
	results, err := harness.RunAll(pairs)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkAblationSchedulingDistance sweeps the prefetch scheduling
// distance c (the paper fixes c = 1; Sec. 3.3 notes the right value
// depends on the loop body).
func BenchmarkAblationSchedulingDistance(b *testing.B) {
	benchSizeGlobal = benchSize()
	cs := []int{1, 2, 4, 8}
	var specs []harness.Spec
	for _, c := range cs {
		base, opt := dbSpecWith(func(o *jit.Options) { o.C = c })
		specs = append(specs, base, opt)
	}
	results := sweep(b, specs)
	for i, c := range cs {
		sp := harness.SpeedupPct(results[2*i].Stats, results[2*i+1].Stats)
		b.Logf("db, Pentium4, c=%d: %+6.2f%%", c, sp)
		b.ReportMetric(sp, fmt.Sprintf("c%d_speedup_%%", c))
	}
	spin(b)
}

// BenchmarkAblationInspectionIterations sweeps the number of iterations
// object inspection observes (paper: 20).
func BenchmarkAblationInspectionIterations(b *testing.B) {
	benchSizeGlobal = benchSize()
	ks := []int{5, 10, 20, 40}
	var specs []harness.Spec
	for _, k := range ks {
		base, opt := dbSpecWith(func(o *jit.Options) { o.Inspect.Iterations = k })
		specs = append(specs, base, opt)
	}
	results := sweep(b, specs)
	for i, k := range ks {
		sp := harness.SpeedupPct(results[2*i].Stats, results[2*i+1].Stats)
		b.Logf("db, Pentium4, K=%d: %+6.2f%% (inspection steps %d)",
			k, sp, results[2*i+1].Stats.InspectSteps)
		b.ReportMetric(sp, fmt.Sprintf("k%d_speedup_%%", k))
	}
	spin(b)
}

// BenchmarkAblationMajorityThreshold sweeps the dominant-stride majority
// requirement (paper: 75%). db's backward insertion scan has a dominant
// stride just above 75%, so a stricter threshold destroys the pattern.
func BenchmarkAblationMajorityThreshold(b *testing.B) {
	benchSizeGlobal = benchSize()
	ths := []float64{0.5, 0.65, 0.75, 0.9}
	var specs []harness.Spec
	for _, th := range ths {
		base, opt := dbSpecWith(func(o *jit.Options) { o.Threshold = th })
		specs = append(specs, base, opt)
	}
	results := sweep(b, specs)
	for i, th := range ths {
		sp := harness.SpeedupPct(results[2*i].Stats, results[2*i+1].Stats)
		b.Logf("db, Pentium4, threshold=%.2f: %+6.2f%% (prefetch sites %d)",
			th, sp, results[2*i+1].Stats.Prefetch.Total())
		b.ReportMetric(sp, fmt.Sprintf("t%02.0f_speedup_%%", th*100))
	}
	spin(b)
}

// BenchmarkAblationGuardedLoad compares the Pentium 4 with and without the
// guarded-load mapping for intra-iteration prefetches (TLB priming,
// Sec. 3.3/4). Without it, prefetches are DTLB-cancelled on cold pages.
func BenchmarkAblationGuardedLoad(b *testing.B) {
	size := benchSize()
	w, err := workloads.ByName("db")
	if err != nil {
		b.Fatal(err)
	}
	for _, guarded := range []bool{true, false} {
		machine := arch.Pentium4()
		machine.GuardedIntraPrefetch = guarded
		var cycles [2]uint64
		var dropped uint64
		for i, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
			prog := w.Build(size)
			v := vm.New(prog, vm.Config{Machine: machine, Mode: mode})
			s, err := v.Measure(nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			cycles[i] = s.Cycles
			dropped = s.Mem.PrefetchesDropped
		}
		sp := 100 * (float64(cycles[0])/float64(cycles[1]) - 1)
		b.Logf("db, Pentium4, guarded=%v: %+6.2f%% (dropped prefetches %d)", guarded, sp, dropped)
		b.ReportMetric(sp, fmt.Sprintf("guarded_%v_speedup_%%", guarded))
	}
	spin(b)
}

// BenchmarkAblationCompaction runs the gcchurn scenario under the paper's
// sliding-compaction collector and under a non-moving free-list collector:
// compaction preserves the co-allocation strides across the collection;
// the free-list collector scatters the post-GC clusters, the 75% majority
// test fails, and intra-iteration prefetching evaporates (Sec. 4).
func BenchmarkAblationCompaction(b *testing.B) {
	size := benchSize()
	for _, tc := range []struct {
		name string
		gc   heap.GCMode
	}{{"compact", heap.GCSlidingCompact}, {"freelist", heap.GCMarkSweepFreeList}} {
		var cycles [2]uint64
		var intra int
		for i, mode := range []jit.Mode{jit.Baseline, jit.InterIntra} {
			prog := workloads.GCChurn.Build(size)
			v := vm.New(prog, vm.Config{
				Machine: arch.AthlonMP(), Mode: mode,
				HeapBytes: workloads.GCChurn.HeapBytes, GC: tc.gc,
			})
			s, err := v.Measure(nil, 1)
			if err != nil {
				b.Fatal(err)
			}
			cycles[i] = s.Cycles
			intra = s.Prefetch.IntraPrefetches
		}
		sp := 100 * (float64(cycles[0])/float64(cycles[1]) - 1)
		b.Logf("gcchurn, AthlonMP, %s GC: %+6.2f%% (intra prefetch sites %d)", tc.name, sp, intra)
		b.ReportMetric(sp, tc.name+"_speedup_%")
	}
	spin(b)
}

// BenchmarkAblationInterprocedural toggles stepping into callees during
// object inspection — the trade-off the paper leaves open (Sec. 3.2).
func BenchmarkAblationInterprocedural(b *testing.B) {
	benchSizeGlobal = benchSize()
	type cell struct {
		wl string
		ip bool
	}
	var cells []cell
	var specs []harness.Spec
	for _, ip := range []bool{false, true} {
		for _, wl := range []string{"db", "jess"} {
			base := harness.Spec{Workload: wl, Size: benchSizeGlobal, Machine: "Pentium4", Mode: jit.Baseline}
			opt := base
			opt.Mode = jit.InterIntra
			o := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
			o.Inspect.Interprocedural = ip
			opt.JIT = &o
			cells = append(cells, cell{wl, ip})
			specs = append(specs, base, opt)
		}
	}
	results := sweep(b, specs)
	for i, c := range cells {
		sp := harness.SpeedupPct(results[2*i].Stats, results[2*i+1].Stats)
		b.Logf("%s, Pentium4, interprocedural=%v: %+6.2f%% (inspection steps %d)",
			c.wl, c.ip, sp, results[2*i+1].Stats.InspectSteps)
		b.ReportMetric(sp, fmt.Sprintf("%s_ip_%v_speedup_%%", c.wl, c.ip))
	}
	spin(b)
}

// BenchmarkAblationAdaptiveC compares the paper's fixed scheduling
// distance against the adaptive per-loop distance extension on the
// streaming workloads, whose tight loop bodies make c = 1 too late.
func BenchmarkAblationAdaptiveC(b *testing.B) {
	benchSizeGlobal = benchSize()
	type cell struct {
		wl       string
		adaptive bool
	}
	var cells []cell
	var specs []harness.Spec
	for _, wl := range []string{"euler", "mtrt", "db"} {
		for _, adaptive := range []bool{false, true} {
			base := harness.Spec{Workload: wl, Size: benchSizeGlobal, Machine: "Pentium4", Mode: jit.Baseline}
			opt := base
			opt.Mode = jit.InterIntra
			o := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
			o.AdaptiveC = adaptive
			opt.JIT = &o
			cells = append(cells, cell{wl, adaptive})
			specs = append(specs, base, opt)
		}
	}
	results := sweep(b, specs)
	for i, c := range cells {
		sp := harness.SpeedupPct(results[2*i].Stats, results[2*i+1].Stats)
		b.Logf("%s, Pentium4, adaptiveC=%v: %+6.2f%%", c.wl, c.adaptive, sp)
		b.ReportMetric(sp, fmt.Sprintf("%s_adaptive_%v_speedup_%%", c.wl, c.adaptive))
	}
	spin(b)
}

// --- component microbenchmarks ------------------------------------------------

// BenchmarkJITCompileWithInspection measures the cost of one full JIT
// compilation of the jess query method, object inspection included — the
// "ultra-lightweight" claim in numbers.
func BenchmarkJITCompileWithInspection(b *testing.B) {
	w, _ := workloads.ByName("jess")
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	if _, err := v.Run(nil); err != nil {
		b.Fatal(err)
	}
	m := prog.MethodByName("::findInMemory")
	opts := jit.DefaultOptions(arch.Pentium4(), jit.InterIntra)
	// Recover live arguments the same way the inspector example does:
	// the first TokenVector and Token in the heap.
	tvClass := prog.Universe.ByName("TokenVector")
	tokClass := prog.Universe.ByName("Token")
	var tvAddr, tokAddr uint32
	v.Heap.Walk(func(addr, size uint32, c *classfile.Class) bool {
		if c == tvClass && tvAddr == 0 {
			tvAddr = addr
		}
		if c == tokClass && tokAddr == 0 {
			tokAddr = addr
		}
		return tvAddr == 0 || tokAddr == 0
	})
	args := []value.Value{value.Ref(tvAddr), value.Ref(tokAddr)}
	var steps int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := jit.Compile(prog, v.Heap, m, args, opts)
		steps = c.InspectSteps
	}
	b.ReportMetric(float64(steps), "inspection_steps/op")
}

// BenchmarkInterpreter measures raw execution speed of the engine.
// BenchmarkOracle prices the differential suite's reference side: the
// prefetch-blind naive interpreter running jess (small), fingerprint
// included. Compare with BenchmarkVM — the full JIT+memsim stack on the
// same workload — to see what the oracle's simplicity buys.
func BenchmarkOracle(b *testing.B) {
	w, err := workloads.ByName("jess")
	if err != nil {
		b.Fatal(err)
	}
	var loads uint64
	for i := 0; i < b.N; i++ {
		// Rebuilt each iteration: the oracle runs over the program's own
		// universe, so statics carry state between runs of one build.
		prog := w.Build(workloads.SizeSmall)
		fp, err := oracle.Run(prog, nil, oracle.Config{HeapBytes: w.HeapBytes})
		if err != nil {
			b.Fatal(err)
		}
		if fp.Trap != oracle.TrapNone {
			b.Fatalf("trap %q", fp.Trap)
		}
		loads = fp.Loads
	}
	b.ReportMetric(float64(loads), "demand_loads/op")
}

// BenchmarkVM is BenchmarkOracle's counterpart: the same workload through
// the full stack (JIT with object inspection, memory simulator) under the
// paper's complete algorithm.
func BenchmarkVM(b *testing.B) {
	w, err := workloads.ByName("jess")
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		prog := w.Build(workloads.SizeSmall)
		v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.InterIntra, HeapBytes: w.HeapBytes})
		s, err := v.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.Cycles
	}
	b.ReportMetric(float64(cycles), "simulated_cycles/op")
}

func BenchmarkInterpreter(b *testing.B) {
	w, _ := workloads.ByName("search")
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := v.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs = s.Instructions
		v.ResetRun()
	}
	b.ReportMetric(float64(instrs), "simulated_instrs/op")
}

// BenchmarkGCCollect measures one full sliding-compaction collection of
// the jess heap (rebuilt outside the timer each iteration).
func BenchmarkGCCollect(b *testing.B) {
	w, _ := workloads.ByName("jess")
	prog := w.Build(workloads.SizeSmall)
	v := vm.New(prog, vm.Config{Machine: arch.Pentium4(), Mode: jit.Baseline})
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		v.ResetRun()
		if _, err := v.Run(nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		v.Heap.Collect(func(func(*value.Value)) {})
	}
}
