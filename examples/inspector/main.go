// inspector is a white-box demonstration of object inspection (Sec. 3.2):
// it builds the jess analog, populates its heap by running the program
// once, and then invokes the inspection machinery directly on
// findInMemory with real argument values — printing the address traces
// each load produced and the stride patterns detected from them.
package main

import (
	"fmt"
	"log"
	"sort"

	"strider"
	"strider/internal/cfg"
	"strider/internal/classfile"
	"strider/internal/core/inspect"
	"strider/internal/core/jit"
	"strider/internal/core/ldg"
	"strider/internal/core/stride"
	"strider/internal/dataflow"
	"strider/internal/value"
)

func main() {
	w, err := strider.WorkloadByName("jess")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(strider.SizeSmall)
	v := strider.NewVM(prog, strider.VMConfig{Machine: strider.Pentium4(), Mode: jit.Baseline})

	// Run once so the heap contains the TokenVector the queries use.
	if _, err := v.Run(nil); err != nil {
		log.Fatal(err)
	}

	m := prog.MethodByName("::findInMemory")
	g := cfg.Build(m)
	f := cfg.BuildLoops(g)
	df := dataflow.Reach(g)

	fmt.Println("loop nesting forest of findInMemory (postorder):")
	for _, l := range f.Postorder() {
		fmt.Printf("  loop header B%d depth %d (%d blocks)\n", l.Header, l.Depth, len(l.Blocks))
	}
	fmt.Println()

	// Inspect the outer loop with the inner one promoted, as the compiler
	// would after discovering the inner loop's small trip count.
	post := f.Postorder()
	inner, outer := post[0], post[1]
	lg := ldg.Build(m, g, df, outer, []*cfg.Loop{inner})
	record := make([]int, 0, len(lg.Nodes))
	for _, n := range lg.Nodes {
		record = append(record, n.Instr)
	}

	// The actual argument values: find a live TokenVector in the heap the
	// same way the VM's dispatcher would — here we simply re-run the entry
	// until the method is invoked. For the demonstration we use the
	// statics-free route: scan the heap for the first TokenVector object.
	tvClass := prog.Universe.ByName("TokenVector")
	tokClass := prog.Universe.ByName("Token")
	var tvAddr, tokAddr uint32
	v.Heap.Walk(func(addr, size uint32, c *classfile.Class) bool {
		switch c {
		case tvClass:
			if tvAddr == 0 {
				tvAddr = addr
			}
		case tokClass:
			if tokAddr == 0 {
				tokAddr = addr
			}
		}
		return tvAddr == 0 || tokAddr == 0
	})
	if tvAddr == 0 || tokAddr == 0 {
		log.Fatal("no TokenVector/Token found in heap")
	}
	args := []value.Value{value.Ref(tvAddr), value.Ref(tokAddr)}
	fmt.Printf("inspecting with actual arguments: tv=0x%x, t=0x%x\n\n", tvAddr, tokAddr)

	res := inspect.Inspect(prog, v.Heap, g, f, outer, record, args, inspect.DefaultConfig())
	fmt.Printf("inspection: %d steps, %d target iterations, natural exit %v\n\n",
		res.Steps, res.TargetTrips, res.NaturalExit)

	instrs := make([]int, 0, len(res.Traces))
	for i := range res.Traces {
		instrs = append(instrs, i)
	}
	sort.Ints(instrs)
	for _, i := range instrs {
		trace := res.Traces[i]
		d, ok := stride.Inter(trace, stride.DefaultThreshold)
		pat := "no inter-iteration pattern"
		if ok {
			pat = fmt.Sprintf("inter-iteration stride %+d", d)
		}
		fmt.Printf("@%-3d %-38s %s\n     first addresses:", i, m.Code[i].String(), pat)
		for k := 0; k < len(trace) && k < 6; k++ {
			fmt.Printf(" 0x%x", trace[k].Addr)
		}
		fmt.Println()
	}
}
