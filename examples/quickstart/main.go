// Quickstart: run the jess analog (the paper's motivating example) on both
// simulated machines under all three prefetching configurations and print
// the speedups — a miniature Figure 6/7.
package main

import (
	"fmt"
	"log"

	"strider"
)

func main() {
	fmt.Println("stride prefetching by dynamically inspecting objects — quickstart")
	fmt.Println()
	for _, machine := range strider.Machines() {
		inter, both, err := strider.Speedups("jess", machine.Name, strider.SizeSmall)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s INTER %+6.2f%%   INTER+INTRA %+6.2f%%\n", machine.Name, inter, both)
	}
	fmt.Println()

	// Detailed metrics of one run.
	stats, err := strider.Run(strider.Spec{
		Workload: "jess",
		Machine:  "Pentium4",
		Mode:     strider.InterIntra,
		Size:     strider.SizeSmall,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jess / Pentium4 / INTER+INTRA:\n")
	fmt.Printf("  cycles              %d\n", stats.Cycles)
	fmt.Printf("  retired instructions %d\n", stats.Instructions)
	fmt.Printf("  L1 load MPI         %.5f\n", stats.L1LoadMPI())
	fmt.Printf("  prefetches issued   %d (guarded %d)\n", stats.Mem.PrefetchesIssued, stats.Mem.PrefetchesGuarded)
	fmt.Printf("  spec_loads compiled %d, dereference prefetches %d\n",
		stats.Prefetch.SpecLoads, stats.Prefetch.DerefPrefetches)
	fmt.Printf("  checksum            %016x\n", stats.Checksum)
}
