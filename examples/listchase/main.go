// listchase demonstrates the core observation behind stride prefetching
// (Sec. 1): "If the program constructs the list by allocating and
// appending equal-sized elements without other intervening allocations,
// the load instruction for retrieving the next element in the loop
// probably has constant strides."
//
// The example builds two linked lists with the IR builder — one allocated
// contiguously (constant stride between nodes) and one with intervening
// garbage allocations of varying size (no stride) — and shows that object
// inspection discovers the pattern only for the first, with the speedup to
// match.
package main

import (
	"fmt"
	"log"

	"strider"
	"strider/internal/classfile"
	"strider/internal/ir"
	"strider/internal/value"
)

// buildList returns a program whose main() builds an n-node list and sums
// it m times. With interleave, varying-size garbage arrays are allocated
// between nodes, destroying the stride.
func buildList(n, m int32, interleave bool) *ir.Program {
	u := classfile.NewUniverse()
	// 40-byte nodes: the stride must exceed half a cache line for the
	// profitability analysis to keep the prefetch (Sec. 3.3).
	nodeClass := u.MustDefineClass("Node", nil,
		classfile.FieldSpec{Name: "val", Kind: value.KindInt},
		classfile.FieldSpec{Name: "next", Kind: value.KindRef},
		classfile.FieldSpec{Name: "pad0", Kind: value.KindInt},
		classfile.FieldSpec{Name: "pad1", Kind: value.KindInt},
		classfile.FieldSpec{Name: "pad2", Kind: value.KindInt},
	)
	fVal := nodeClass.FieldByName("val")
	fNext := nodeClass.FieldByName("next")
	p := ir.NewProgram(u)

	// ::sum(head) -> int — the pointer-chasing loop.
	sum := func() *ir.Method {
		b := ir.NewBuilder(p, nil, "sum", value.KindInt, value.KindRef)
		cur := b.NewReg()
		b.MoveTo(cur, b.Param(0))
		acc := b.ConstInt(0)
		null := b.ConstNull()
		loop := b.Here()
		done := b.NewLabel()
		b.Br(value.KindRef, ir.CondEQ, cur, null, done)
		v := b.GetField(cur, fVal)
		b.ArithTo(acc, ir.OpAdd, value.KindInt, acc, v)
		nx := b.GetField(cur, fNext) // the recurrent load: strided or not
		b.MoveTo(cur, nx)
		b.Goto(loop)
		b.Bind(done)
		b.Return(acc)
		return b.Finish()
	}()

	// ::main() -> int
	b := ir.NewBuilder(p, nil, "main", value.KindInt)
	head := b.ConstNull()
	nn := b.ConstInt(n)
	i := b.ConstInt(0)
	cond := b.NewLabel()
	body := b.NewLabel()
	b.Goto(cond)
	b.Bind(body)
	node := b.New(nodeClass)
	b.PutField(node, fVal, i)
	b.PutField(node, fNext, head)
	b.MoveTo(head, node)
	if interleave {
		// Intervening allocation of varying size.
		seven := b.ConstInt(7)
		r := b.Arith(ir.OpAnd, value.KindInt, i, seven)
		one := b.ConstInt(1)
		sz0 := b.Arith(ir.OpAdd, value.KindInt, r, one)
		three := b.ConstInt(3)
		sz := b.Arith(ir.OpMul, value.KindInt, sz0, three)
		garbage := b.NewArray(value.KindInt, sz)
		zero := b.ConstInt(0)
		b.ArrayStore(value.KindInt, garbage, zero, i)
	}
	b.IncInt(i, 1)
	b.Bind(cond)
	b.Br(value.KindInt, ir.CondLT, i, nn, body)

	total := b.ConstInt(0)
	mm := b.ConstInt(m)
	q := b.ConstInt(0)
	qc := b.NewLabel()
	qb := b.NewLabel()
	b.Goto(qc)
	b.Bind(qb)
	s := b.Call(sum, head)
	b.ArithTo(total, ir.OpXor, value.KindInt, total, s)
	b.IncInt(q, 1)
	b.Bind(qc)
	b.Br(value.KindInt, ir.CondLT, q, mm, qb)
	b.Sink(total)
	b.Return(total)
	p.Entry = b.Finish()
	return p
}

func run(label string, interleave bool) {
	machine := strider.AthlonMP()
	var cycles [3]uint64
	var prefetches uint64
	for mode := strider.Baseline; mode <= strider.InterIntra; mode++ {
		prog := buildList(60000, 8, interleave)
		v := strider.NewVM(prog, strider.VMConfig{Machine: machine, Mode: mode})
		stats, err := v.Measure(nil, 1)
		if err != nil {
			log.Fatal(err)
		}
		cycles[mode] = stats.Cycles
		if mode == strider.InterIntra {
			prefetches = stats.Mem.PrefetchesIssued
			m := prog.MethodByName("::sum")
			if c := v.CompiledFor(m); c != nil && len(c.Graphs) > 0 {
				fmt.Println(c.Graphs[0].String())
			}
		}
	}
	sp := 100 * (float64(cycles[strider.Baseline])/float64(cycles[strider.InterIntra]) - 1)
	fmt.Printf("%s: baseline=%d cycles, inter+intra=%d cycles (%+.1f%%), %d prefetches\n\n",
		label, cycles[strider.Baseline], cycles[strider.InterIntra], sp, prefetches)
}

func main() {
	fmt.Println("list chase: stride discovery on linked lists (Athlon MP)")
	fmt.Println()
	run("contiguous list (constant node stride)", false)
	run("interleaved allocations (no stride)", true)
}
