// dbsort reproduces the paper's headline result on the _209_db analog:
// a sort loop over large records whose Vector/String children are
// co-allocated, so only intra-iteration strides exist. INTER (Wu's
// algorithm) finds nothing it can use; INTER+INTRA performs dereference-
// based + intra-iteration prefetching and wins big (paper: 18.9% on the
// Pentium 4, 25.1% on the Athlon MP).
package main

import (
	"fmt"
	"log"

	"strider"
)

func main() {
	fmt.Println("db: shell-sort over records with co-allocated children")
	fmt.Println()
	for _, machine := range strider.Machines() {
		var cycles [3]uint64
		for mode := strider.Baseline; mode <= strider.InterIntra; mode++ {
			stats, err := strider.Run(strider.Spec{
				Workload: "db",
				Machine:  machine.Name,
				Mode:     mode,
				Size:     strider.SizeSmall,
			})
			if err != nil {
				log.Fatal(err)
			}
			cycles[mode] = stats.Cycles
			if mode == strider.InterIntra {
				fmt.Printf("%s: prefetch codegen for the sort: specloads=%d deref=%d intra=%d\n",
					machine.Name, stats.Prefetch.SpecLoads, stats.Prefetch.DerefPrefetches,
					stats.Prefetch.IntraPrefetches)
			}
		}
		sp := func(m strider.Mode) float64 {
			return 100 * (float64(cycles[strider.Baseline])/float64(cycles[m]) - 1)
		}
		fmt.Printf("%s: INTER %+5.1f%%   INTER+INTRA %+5.1f%%   (paper: ~0%% and +18.9%%/+25.1%%)\n\n",
			machine.Name, sp(strider.Inter), sp(strider.InterIntra))
	}
}
