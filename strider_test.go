package strider_test

import (
	"testing"

	"strider"
)

func TestFacadeSmoke(t *testing.T) {
	if len(strider.Workloads()) != 12 {
		t.Fatal("twelve Table 3 workloads")
	}
	if len(strider.Machines()) != 2 {
		t.Fatal("two machines")
	}
	if strider.Pentium4().Name != "Pentium4" || strider.AthlonMP().Name != "AthlonMP" {
		t.Fatal("machine constructors")
	}
	w, err := strider.WorkloadByName("jess")
	if err != nil || w.Name != "jess" {
		t.Fatal(err)
	}
	stats, err := strider.Run(strider.Spec{
		Workload: "search", Machine: "AthlonMP", Mode: strider.Baseline, Size: strider.SizeSmall,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles == 0 || stats.Checksum == 0 {
		t.Error("empty run stats")
	}
	inter, both, err := strider.Speedups("search", "AthlonMP", strider.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 0 || both != 0 {
		t.Errorf("search must be unaffected: %f, %f", inter, both)
	}
}

func TestFacadeBatch(t *testing.T) {
	specs := []strider.Spec{
		{Workload: "search", Machine: "Pentium4", Mode: strider.Baseline, Size: strider.SizeSmall},
		{Workload: "search", Machine: "AthlonMP", Mode: strider.Baseline, Size: strider.SizeSmall},
		{Workload: "search", Machine: "Pentium4", Mode: strider.Baseline, Size: strider.SizeSmall},
	}
	results, err := strider.RunAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Spec.Machine != specs[i].Machine {
			t.Errorf("cell %d out of order", i)
		}
	}
	if results[0].Stats.Cycles != results[2].Stats.Cycles {
		t.Error("duplicate cells must return identical results")
	}
	if results[0].Stats.Checksum != results[1].Stats.Checksum {
		t.Error("checksum must not depend on the machine")
	}
	if strider.Parallelism() < 1 {
		t.Error("parallelism must be at least 1")
	}
}

func TestFacadeCustomVM(t *testing.T) {
	w, _ := strider.WorkloadByName("jess")
	prog := w.Build(strider.SizeSmall)
	v := strider.NewVM(prog, strider.VMConfig{Machine: strider.Pentium4(), Mode: strider.InterIntra})
	stats, err := v.Measure(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Prefetch.SpecLoads == 0 {
		t.Error("jess under INTER+INTRA must compile spec_loads")
	}
	if v.CompiledFor(prog.MethodByName("::findInMemory")) == nil {
		t.Error("findInMemory must be JIT-compiled")
	}
}
