package strider_test

import (
	"testing"

	"strider"
)

func TestFacadeSmoke(t *testing.T) {
	if len(strider.Workloads()) != 12 {
		t.Fatal("twelve Table 3 workloads")
	}
	if len(strider.Machines()) != 2 {
		t.Fatal("two machines")
	}
	if strider.Pentium4().Name != "Pentium4" || strider.AthlonMP().Name != "AthlonMP" {
		t.Fatal("machine constructors")
	}
	w, err := strider.WorkloadByName("jess")
	if err != nil || w.Name != "jess" {
		t.Fatal(err)
	}
	stats, err := strider.Run(strider.Spec{
		Workload: "search", Machine: "AthlonMP", Mode: strider.Baseline, Size: strider.SizeSmall,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles == 0 || stats.Checksum == 0 {
		t.Error("empty run stats")
	}
	inter, both, err := strider.Speedups("search", "AthlonMP", strider.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 0 || both != 0 {
		t.Errorf("search must be unaffected: %f, %f", inter, both)
	}
}

func TestFacadeCustomVM(t *testing.T) {
	w, _ := strider.WorkloadByName("jess")
	prog := w.Build(strider.SizeSmall)
	v := strider.NewVM(prog, strider.VMConfig{Machine: strider.Pentium4(), Mode: strider.InterIntra})
	stats, err := v.Measure(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Prefetch.SpecLoads == 0 {
		t.Error("jess under INTER+INTRA must compile spec_loads")
	}
	if v.CompiledFor(prog.MethodByName("::findInMemory")) == nil {
		t.Error("findInMemory must be JIT-compiled")
	}
}
