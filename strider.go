// Package strider is a reproduction of "Stride Prefetching by Dynamically
// Inspecting Objects" (Inagaki, Onodera, Komatsu, Nakatani; PLDI 2003).
//
// It contains a complete simulated Java-style runtime — typed register IR,
// class universe, garbage-collected heap with sliding compaction, a mixed-
// mode VM with a JIT compiler — plus the paper's contribution: stride
// prefetching driven by object inspection (compile-time partial
// interpretation with the actual argument values), discovering both
// inter-iteration and intra-iteration stride patterns over a load
// dependence graph, and a two-machine memory-system simulator (Pentium 4
// and Athlon MP, Table 2) that executes the generated prefetches.
//
// This package is the public facade: build or pick a workload, run it on a
// machine under a prefetching mode, and read the paper's metrics back.
// See the examples/ directory and cmd/experiments for usage.
package strider

import (
	"io"

	"strider/internal/arch"
	"strider/internal/core/jit"
	"strider/internal/harness"
	"strider/internal/heap"
	"strider/internal/ir"
	"strider/internal/memsim"
	"strider/internal/oracle"
	"strider/internal/telemetry"
	"strider/internal/vm"
	"strider/internal/workloads"
)

// Mode selects the prefetching configuration (the paper's evaluation axes).
type Mode = jit.Mode

// The evaluation configurations of Sec. 4.
const (
	// Baseline disables stride prefetching.
	Baseline = jit.Baseline
	// Inter enables inter-iteration stride prefetching only (the paper's
	// emulation of Wu's algorithm).
	Inter = jit.Inter
	// InterIntra enables the paper's full algorithm.
	InterIntra = jit.InterIntra
)

// Size selects a workload's problem scale.
type Size = workloads.Size

// Problem scales.
const (
	// SizeSmall is a fast test scale.
	SizeSmall = workloads.SizeSmall
	// SizeFull is the evaluation scale.
	SizeFull = workloads.SizeFull
)

// Machine is a simulated machine description.
type Machine = arch.Machine

// Pentium4 returns the Pentium 4 machine of Table 2.
func Pentium4() *Machine { return arch.Pentium4() }

// AthlonMP returns the Athlon MP machine of Table 2.
func AthlonMP() *Machine { return arch.AthlonMP() }

// Machines returns both evaluation machines.
func Machines() []*Machine { return arch.Machines() }

// HWModels returns the names of the simulated hardware-prefetcher models
// (the Spec.HW and Machine.HWPrefetcher selectors): none, nextline,
// stream, ipstride, tracker, multistride.
func HWModels() []string { return memsim.HWModels() }

// SetHWModel installs a process-wide default hardware-prefetcher model
// for specs that leave HW empty ("" restores each machine's own model).
func SetHWModel(name string) error { return harness.SetHWModel(name) }

// PredictSources returns the names of the prediction sources feeding
// prefetch decisions (the Spec.Predict selectors): dynamic (the paper's
// object inspection), static (offline IR analysis, no inspection), pgo
// (replay a recorded inspection profile).
func PredictSources() []string { return jit.PredictSources() }

// SetPredict installs a process-wide default prediction source for specs
// that leave Predict empty ("" restores the dynamic default).
func SetPredict(name string) error { return harness.SetPredict(name) }

// Workload is one benchmark analog (see internal/workloads).
type Workload = workloads.Workload

// Workloads returns the twelve benchmark analogs in Table 3 order.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName returns a workload by its Table 3 name.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Spec identifies one experimental run.
type Spec = harness.Spec

// RunStats is the result of one measured run.
type RunStats = vm.RunStats

// Run executes one experiment spec (results are cached per process;
// concurrent callers with the same spec share one underlying execution).
func Run(s Spec) (RunStats, error) { return harness.Run(s) }

// Result is the outcome of one cell of a batch run.
type Result = harness.Result

// Grid is a batch of experiment cells scheduled across a bounded worker
// pool with deduplication of identical cells.
type Grid = harness.Grid

// RunAll executes a batch of specs across the worker pool and returns
// results in order; the error is the first cell error, if any.
func RunAll(specs []Spec) ([]Result, error) { return harness.RunAll(specs) }

// SetParallelism sets the default worker-pool size for batch runs
// (n <= 0 restores the default, GOMAXPROCS).
func SetParallelism(n int) { harness.SetParallelism(n) }

// Parallelism returns the current default worker-pool size.
func Parallelism() int { return harness.Parallelism() }

// SetProgress directs per-cell progress and timing lines to w (nil, the
// default, disables them). Table and figure output is unaffected, so
// results stay byte-identical at every parallelism level.
func SetProgress(w io.Writer) { harness.SetProgress(w) }

// Recorder receives the stack's telemetry events: JIT compiles, loop
// inspection verdicts, Sec. 3.3 filter decisions, per-site memory
// attribution, and grid cell scheduling. Implementations must be safe for
// concurrent use when batch runs are parallel.
type Recorder = telemetry.Recorder

// Trace is the built-in Recorder: a concurrency-safe in-memory collector
// with Chrome trace_event JSON export (WriteChromeTrace), CSV metric
// export (WriteCSV), and a human-readable decision log (DecisionLog).
type Trace = telemetry.Trace

// NewTrace returns an empty Trace.
func NewTrace() *Trace { return telemetry.NewTrace() }

// SetRecorder installs r as the telemetry sink for subsequent Run/RunAll
// calls (nil, the default, disables telemetry at zero cost). Cells served
// from the result cache emit only their grid cell event — use Explain for
// a complete single-run decision trace.
func SetRecorder(r Recorder) { harness.SetRecorder(r) }

// Explain runs one spec on a private, uncached VM with tracing enabled
// and returns the human-readable per-loop prefetch decision log.
func Explain(s Spec) (string, error) { return harness.Explain(s) }

// VerifyReport is the outcome of one differential verification: the
// reference fingerprint, one cell per (machine, prefetch mode)
// configuration, and every mismatch found.
type VerifyReport = oracle.Report

// Verify proves a workload's semantics are prefetch-invariant: a naive
// prefetch-blind reference interpreter and the full JIT+memsim stack must
// produce identical architectural fingerprints (result, output checksum,
// demand-load address stream, final heap, live object graph, statics, GC
// count) under every prefetching configuration on both machines.
// Compile-time object inspection is additionally checked for heap and
// statics leaks, and the memory simulator's counter and inclusion
// invariants are asserted for every cell.
func Verify(workload string, size Size, gc GCMode) (*VerifyReport, error) {
	return harness.Verify(workload, size, gc)
}

// Speedups measures the INTER and INTER+INTRA speedups (percent) of a
// workload over BASELINE on the named machine.
func Speedups(workload, machine string, size Size) (inter, interIntra float64, err error) {
	return harness.Speedups(workload, machine, size)
}

// Program is an IR program; VM executes them. Exposed so examples can
// build custom programs against the VM directly.
type Program = ir.Program

// VM is the simulated virtual machine.
type VM = vm.VM

// VMConfig configures a VM.
type VMConfig = vm.Config

// NewVM creates a VM for a program.
func NewVM(p *Program, cfg VMConfig) *VM { return vm.New(p, cfg) }

// GCMode selects the collector behaviour.
type GCMode = heap.GCMode

// Collector modes.
const (
	// GCSlidingCompact is the paper's order-preserving collector.
	GCSlidingCompact = heap.GCSlidingCompact
	// GCMarkSweepFreeList is the non-moving ablation collector.
	GCMarkSweepFreeList = heap.GCMarkSweepFreeList
)
